// Package prcu implements Predicate RCU (PRCU), the read-copy-update
// variant of Arbel and Morrison ("Predicate RCU: An RCU for Scalable
// Concurrent Updates", PPoPP 2015), together with the baseline RCU
// algorithms the paper evaluates it against.
//
// RCU gives readers synchronization-free access that executes correctly
// with concurrent updates; in exchange, an update that transitions the
// data structure between certain states must wait for all pre-existing
// readers (WaitForReaders). That wait is the bottleneck that keeps RCU out
// of update-heavy data structures. PRCU fixes this by letting the update
// say which readers it actually needs to wait for: readers annotate their
// critical sections with a domain value (a key, a bucket index, ...), and
// WaitForReaders takes a predicate selecting the values whose readers the
// update's consistency depends on.
//
// # Engines
//
// Nine interchangeable engines implement the one RCU interface:
//
//	NewEER      EER-PRCU: evaluate the predicate per reader (§4.1)
//	NewD        D-PRCU: shared counter table indexed by hashed value (§4.2)
//	NewDEER     DEER-PRCU: per-reader counter tables (§4.3)
//	NewTimeRCU  Time RCU: timestamp quiescence, waits for all readers
//	NewURCU     URCU: global grace-period counter + writer lock
//	NewTreeRCU  Tree RCU: Linux hierarchical algorithm, userspace restriction
//	NewDistRCU  Arbel–Attiya distributed per-reader counters
//	NewSRCU     SRCU: per-subsystem two-counter gate protocol
//	NewPacked   Packed RCU: active bit + epoch packed in one reader word
//
// The plain-RCU engines ignore values and predicates, so algorithms can be
// written once against the PRCU interface and benchmarked over any engine.
//
// # Usage
//
//	r := prcu.MustNew(prcu.FlavorD, prcu.Options{})
//	rd, _ := r.Register() // one per long-lived reader goroutine
//	...
//	rd.Enter(key)         // read-side critical section on `key`
//	... traverse ...
//	rd.Exit(key)
//	...
//	r.WaitForReaders(prcu.Interval(k+1, kPrime)) // updater
//
// The reader registry grows on demand — Register never fails unless
// Options.MaxReaders sets an explicit cap. Pinned, long-lived goroutines
// register once and keep their Reader; ephemeral goroutines (request
// handlers and the like) should borrow a warm handle from a ReaderPool
// instead:
//
//	pool := prcu.NewReaderPool(r)
//	...
//	pool.Critical(key, func() { ... traverse ... })
//
// See the examples directory for complete programs and packages citrus and
// hashtable for the paper's two showcase applications.
//
// # Observability
//
// Set Options.Metrics (see NewMetrics) to collect engine-internal
// metrics: grace-period latency measured inside WaitForReaders,
// predicate selectivity (readers scanned versus actually waited for),
// sampled reader critical-section durations, spin-versus-park wait
// resolution, and D-PRCU counter-drain outcomes. Read them back with
// RCU.Stats, export them with PublishMetrics (expvar), or serve the full
// export plane with ObsHandler: Prometheus /metrics, JSON stats, trace
// dumps and a health endpoint for every engine bound by RegisterMetrics.
// Options.RuntimeAttribution additionally tags wait and reclaim-flush
// work with runtime/trace regions and pprof labels. With Metrics unset
// (the default) every hook reduces to one predictable nil-check branch.
//
// Options.FlightRecorder arms the grace-period flight recorder: every
// grace period gets a monotonically increasing GP ID and a causal span
// chain — retire → coalesce → wait → callback, plus linked spans for
// migration drains and autotuner expedites — buffered in a fixed ring
// and served as Chrome trace-event JSON on /debug/prcu/tracez (open the
// capture in Perfetto or chrome://tracing). Blocked waits additionally
// charge per-slot blame — which reader slots delayed the grace period,
// and by how much — aggregated via Metrics.TopBlame, the prcu_blame_*
// metric families, and the health endpoint's blame section. Off (the
// default) the recorder costs one atomic pointer load and a
// never-taken branch per hook.
//
// # Production hardening
//
// WaitForReadersCtx bounds a grace period by a context deadline or
// cancellation — an error return means the grace period did not complete
// and nothing may be reclaimed. Options.StallTimeout arms a kernel-style
// stall watchdog that reports waits wedged on a misbehaving reader
// (Options.OnStall receives the diagnostic StallReport). Reader.Do and
// ReaderPool.Critical keep critical sections panic-safe, and
// ReaderPool.Close releases pooled slots deterministically at shutdown.
// The internal chaos engine exercises all of this under fault injection
// in the torture suite.
//
// # Self-tuning
//
// NewAutotuner closes the loop from observability back to actuation: a
// sampling controller that holds the runtime inside an operator-declared
// envelope (max data age, max retained backlog, max wait p99) by
// re-tuning reclaimer pacing and watermarks, the engines' wait back-off
// discipline (WaitTuner), and — as graceful degradation — the overload
// policy and observability overhead, easing everything back once the
// pressure passes. The chaos storm suite proves the envelope holds
// under stall bursts, update floods and reader churn.
package prcu

import (
	"fmt"
	"net/http"
	"time"

	"prcu/guard"
	"prcu/internal/adapt"
	"prcu/internal/core"
	"prcu/internal/obs"
	"prcu/internal/obshttp"
	"prcu/internal/reclaim"
	"prcu/internal/tsc"
)

// Value is the opaque 64-bit domain value a reader presents to Enter/Exit
// and predicates are evaluated over.
type Value = core.Value

// Predicate selects which read-side critical sections a WaitForReaders
// must wait for. Construct with All, Func, Singleton, Iterable or Interval.
type Predicate = core.Predicate

// RCU is the engine interface; see the package documentation.
type RCU = core.RCU

// Reader is a registered reader's handle; see the package documentation.
type Reader = core.Reader

// Clock is a monotonically increasing, cross-thread-consistent time source
// for the timestamp-based engines. The default (nil) is the system
// monotonic clock, this module's stand-in for the paper's TSC.
type Clock = core.Clock

// ErrTooManyReaders is returned by Register when Options.MaxReaders set a
// cap and all its slots are live. Uncapped engines (the default) never
// return it.
var ErrTooManyReaders = core.ErrTooManyReaders

// All returns the wildcard predicate: it holds for every value, making any
// PRCU engine behave as a standard RCU (§3.1 "RCU fallback").
func All() Predicate { return core.All() }

// Func returns a general predicate encoded as fn, which must be
// side-effect free and may be invoked any number of times per wait.
func Func(fn func(Value) bool) Predicate { return core.Func(fn) }

// Singleton returns the specialized predicate holding only for v.
func Singleton(v Value) Predicate { return core.Singleton(v) }

// Iterable returns the specialized predicate holding over
// {v1, next(v1), ..., vk}.
func Iterable(v1, vk Value, next func(Value) Value) Predicate {
	return core.Iterable(v1, vk, next)
}

// Interval returns an iterable predicate over the inclusive range [lo, hi].
func Interval(lo, hi Value) Predicate { return core.Interval(lo, hi) }

// Flavor names an RCU engine.
type Flavor string

// The available engines. FlavorEER, FlavorD and FlavorDEER are the paper's
// contribution; the rest are the baselines it compares against.
const (
	FlavorEER  Flavor = "eer"
	FlavorD    Flavor = "d"
	FlavorDEER Flavor = "deer"
	FlavorTime Flavor = "time"
	FlavorURCU Flavor = "urcu"
	FlavorTree Flavor = "tree"
	FlavorDist Flavor = "dist"
	FlavorSRCU Flavor = "srcu"
	// FlavorPacked is the packed-state epoch engine: per-reader active
	// bit + epoch in a single atomic word, mutex-free epoch-flip waits.
	FlavorPacked Flavor = "packed"
)

// Flavors lists every engine, in the order the paper's figures use
// (baselines beyond the paper follow in the order they were added).
func Flavors() []Flavor {
	return []Flavor{
		FlavorEER, FlavorD, FlavorDEER,
		FlavorTime, FlavorTree, FlavorURCU, FlavorDist, FlavorSRCU,
		FlavorPacked,
	}
}

// Options configures engine construction. The zero value selects the
// paper's evaluation parameters with an unbounded, grow-on-demand reader
// registry.
type Options struct {
	// MaxReaders, when positive, caps concurrently registered readers;
	// Register returns ErrTooManyReaders once the cap is live. The
	// default 0 lets the reader registry grow on demand, in which case
	// Register never fails.
	MaxReaders int
	// CounterTableSize is D-PRCU's |C|; power of two. Default 1024.
	CounterTableSize int
	// NodesPerReader is DEER-PRCU's per-reader array size; power of two.
	// Default 16.
	NodesPerReader int
	// Clock overrides the time source for the timestamp engines.
	Clock Clock
	// Metrics, when non-nil, attaches the observability layer to the
	// constructed engine: grace-period latency, predicate selectivity,
	// sampled reader-section durations and more, readable via RCU.Stats.
	// One Metrics may be shared by several engines (their numbers merge).
	// nil (the default) disables collection at the cost of one
	// predictable branch per hook.
	Metrics *Metrics
	// StallTimeout, when positive, arms the engine's grace-period stall
	// watchdog: a WaitForReaders (or WaitForReadersCtx) blocked longer
	// than this assembles a StallReport — engine, predicate, elapsed
	// time, and the offending open critical sections — fires OnStall,
	// and counts a stall in Metrics. Zero (the default) disables the
	// watchdog; its checks then cost nothing on the wait path.
	StallTimeout time.Duration
	// OnStall receives stall reports when StallTimeout is set. It runs on
	// the stalled waiter's goroutine and must not call back into the
	// engine's wait paths. nil just counts/traces stalls in Metrics.
	OnStall func(StallReport)
	// StallRateLimit bounds repeat stall reports engine-wide (at most one
	// per window, shared by all concurrent waiters). Default 10s.
	StallRateLimit time.Duration
	// RuntimeAttribution, when set together with Metrics, tags the
	// engine's wait and reclaim-flush work for the Go runtime's own
	// profilers: WaitForReaders executes inside a runtime/trace user
	// region under a per-engine task, stall reports log into that task,
	// and the wait/flush goroutines carry pprof labels (prcu_engine,
	// prcu_op) visible in CPU and goroutine profiles. Off (the default)
	// the hook costs one pointer load and branch per wait. Note the
	// labels replace any pprof labels the waiting goroutine already
	// carried — attribution is per-engine opt-in for exactly that reason.
	RuntimeAttribution bool
	// FlightRecorder, when set together with Metrics, arms the
	// grace-period flight recorder at its default capacity: causal span
	// chains (retire → coalesce → wait → callback) under per-GP IDs,
	// per-slot reader blame on blocked waits, and the /debug/prcu/tracez
	// Chrome-trace endpoint. Equivalent to calling
	// Metrics.EnableFlightRecorder; use that directly for a custom
	// capacity. Off (the default) the recorder hooks cost one atomic
	// pointer load and a never-taken branch.
	FlightRecorder bool
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = tsc.NewMonotonic()
	}
	return o
}

// attach wires o.Metrics and the stall watchdog into a freshly
// constructed engine.
func (o Options) attach(r RCU) RCU {
	if o.Metrics != nil {
		if c, ok := r.(core.MetricsCarrier); ok {
			// Presize per-reader lanes from the slots the engine has
			// actually allocated — MaxReaders is 0 for the default
			// grow-on-demand registry, and presizing with it would leave
			// an empty lane table every hot-path hook must grow on demand.
			n := o.MaxReaders
			if sc, ok := r.(core.SlotCapacitor); ok {
				if c := sc.SlotCapacity(); c > n {
					n = c
				}
			}
			o.Metrics.EnsureReaders(n)
			c.SetMetrics(o.Metrics)
			// Feed the export plane (ObsHandler) under the engine's own
			// name; rebuilding an engine with the same flavor rebinds the
			// name, keeping one stable series per flavor.
			obs.Register(r.Name(), o.Metrics)
			if o.RuntimeAttribution {
				o.Metrics.EnableRuntimeAttribution(r.Name())
			}
			if o.FlightRecorder {
				o.Metrics.EnableFlightRecorder(obs.DefaultFlightCapacity)
			}
		}
	}
	if o.StallTimeout > 0 {
		if sc, ok := r.(core.StallCarrier); ok {
			sc.SetStallConfig(core.StallConfig{
				Timeout:   o.StallTimeout,
				OnStall:   o.OnStall,
				RateLimit: o.StallRateLimit,
			})
		}
	}
	return r
}

// New constructs the engine named by flavor.
func New(flavor Flavor, opt Options) (RCU, error) {
	opt = opt.withDefaults()
	var r RCU
	switch flavor {
	case FlavorEER:
		r = core.NewEER(opt.MaxReaders, opt.Clock)
	case FlavorD:
		r = core.NewD(opt.MaxReaders, opt.CounterTableSize)
	case FlavorDEER:
		r = core.NewDEER(opt.MaxReaders, opt.NodesPerReader, opt.Clock)
	case FlavorTime:
		r = core.NewTimeRCU(opt.MaxReaders, opt.Clock)
	case FlavorURCU:
		r = core.NewURCU(opt.MaxReaders)
	case FlavorTree:
		r = core.NewTreeRCU(opt.MaxReaders)
	case FlavorDist:
		r = core.NewDistRCU(opt.MaxReaders)
	case FlavorSRCU:
		r = core.NewSRCU(opt.MaxReaders)
	case FlavorPacked:
		r = core.NewPacked(opt.MaxReaders)
	default:
		return nil, fmt.Errorf("prcu: unknown flavor %q", flavor)
	}
	// Stamp the flavor token before any watchdog can fire: StallReport
	// carries it so multi-engine processes (and mid-migration windows)
	// attribute stalls to the right engine instance.
	if fc, ok := r.(core.FlavorCarrier); ok {
		fc.SetFlavor(string(flavor))
	}
	return opt.attach(r), nil
}

// MustNew is New for known-good flavors; it panics on error.
func MustNew(flavor Flavor, opt Options) RCU {
	r, err := New(flavor, opt)
	if err != nil {
		panic(err)
	}
	return r
}

// NewEER returns an EER-PRCU engine (§4.1): wait-for-readers evaluates the
// predicate for each reader and waits, via timestamp quiescence detection,
// only for readers it holds for. Wait time is linear in the reader count
// but typically 10x shorter than a full RCU grace period.
func NewEER(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewEER(opt.MaxReaders, opt.Clock))
}

// NewD returns a D-PRCU engine (§4.2): readers hash their value into a
// shared counter table and waits drain only the covered counters, making
// wait time independent of the reader count for enumerable predicates —
// at the price of an atomic counter update per Enter/Exit.
func NewD(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewD(opt.MaxReaders, opt.CounterTableSize))
}

// NewDEER returns a DEER-PRCU engine (§4.3): per-reader counter tables give
// EER's low read overhead without reader/waiter cache-line ping-pong, with
// EER's linear wait scan.
func NewDEER(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewDEER(opt.MaxReaders, opt.NodesPerReader, opt.Clock))
}

// NewTimeRCU returns the Time RCU baseline: EER-PRCU without predicates.
func NewTimeRCU(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewTimeRCU(opt.MaxReaders, opt.Clock))
}

// NewURCU returns the userspace-RCU baseline of Desnoyers et al.
func NewURCU(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewURCU(opt.MaxReaders))
}

// NewTreeRCU returns the Linux hierarchical RCU baseline under the paper's
// userspace restriction (states between operations are quiescent).
func NewTreeRCU(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewTreeRCU(opt.MaxReaders))
}

// NewDistRCU returns the Arbel–Attiya distributed-counters RCU baseline.
func NewDistRCU(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewDistRCU(opt.MaxReaders))
}

// NewSRCU returns McKenney's Sleepable RCU (§7): per-subsystem waiting
// through the two-counter gate protocol D-PRCU builds on. Each instance
// is one isolated subsystem; predicates are ignored within it.
func NewSRCU(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewSRCU(opt.MaxReaders))
}

// NewPacked returns the packed-state epoch engine: each reader's active
// flag and entry epoch share one padded atomic word, so Enter is a load
// plus a store, Exit a single store, and wait-for-readers fetch-and-adds
// a monotone epoch (no writer mutex, unlike URCU) and skips inactive
// readers with one load each. A plain RCU — predicates are ignored.
func NewPacked(opt Options) RCU {
	opt = opt.withDefaults()
	return opt.attach(core.NewPacked(opt.MaxReaders))
}

// NewAsync wraps r with a call_rcu-style deferral worker (§2.1): Call
// schedules a callback to run after a grace period covering its predicate
// without blocking the caller. Close the returned Async to release its
// worker. Async is unbounded; use NewReclaimer when the retirement rate
// can outrun grace periods and the backlog must stay bounded.
func NewAsync(r RCU) *Async { return reclaim.NewAsync(r) }

// Async is the deferred-callback helper returned by NewAsync.
type Async = reclaim.Async

// Reclaimer is the bounded deferred-reclamation engine: sharded
// call_rcu-style retirement queues with batch coalescing (one grace
// period covers many retirements), count and byte watermarks, and
// backpressure or inline-wait degradation under overload. Construct
// with NewReclaimer; see internal/reclaim for the design.
type Reclaimer = reclaim.Reclaimer

// ReclaimConfig parameterizes NewReclaimer. The zero value is an
// unbounded, delay-batched reclaimer with processor-count shards.
type ReclaimConfig = reclaim.Config

// ReclaimPolicy selects the hard-watermark behavior of a Reclaimer.
type ReclaimPolicy = reclaim.Policy

const (
	// PolicyBlock blocks retiring callers at the hard watermark until the
	// backlog drains (flushing is expedited first).
	PolicyBlock = reclaim.PolicyBlock
	// PolicyInline degrades overloaded retirements to a synchronous
	// caller-side grace period and inline free.
	PolicyInline = reclaim.PolicyInline
)

// NewReclaimer starts a bounded deferred-reclamation engine over r.
// Retire schedules a free callback behind a covering grace period;
// batches coalesce compatible predicates so a retirement storm costs a
// handful of grace periods instead of one each. CloseCtx (or Close)
// must be called to release the shard workers.
func NewReclaimer(r RCU, cfg ReclaimConfig) *Reclaimer { return reclaim.New(r, cfg) }

// CounterTableResizer is implemented by the D-PRCU engine: Resize installs
// a larger (or smaller) counter table, globally draining the old one —
// the table expansion §4.2 describes for relieving hash-collision
// contention. Obtain it by type-asserting the engine returned by NewD:
//
//	if rs, ok := r.(prcu.CounterTableResizer); ok { rs.Resize(4096) }
type CounterTableResizer interface {
	Resize(newSize int)
	TableSize() int
}

// Compile-time check that D-PRCU provides the resize extension.
var _ CounterTableResizer = (*core.D)(nil)

// NewSimulated wraps an engine so WaitForReaders burns waitNs nanoseconds
// without any memory accesses — the paper's instrument for isolating
// reader/waiter cache-coherency costs (Figure 8). Unsafe outside
// measurements; see internal/core.Simulated.
func NewSimulated(inner RCU, waitNs int64) RCU { return core.NewSimulated(inner, waitNs) }

// NewNop returns the unsafe no-op engine used by the read-overhead
// ablation to measure a zero-synchronization ceiling.
func NewNop(maxReaders int) RCU { return core.NewNop(maxReaders) }

// Metrics is an engine's observability state: cache-line-padded atomic
// counters, per-reader lanes, latency histograms and an optional event
// trace. Construct with NewMetrics, attach via Options.Metrics, read via
// RCU.Stats or Metrics.Snapshot. See internal/obs for the layout rules
// that keep recording off the contended paths.
type Metrics = obs.Metrics

// Snapshot is a point-in-time aggregation of a Metrics, as returned by
// RCU.Stats. Its Dump method writes a human-readable report.
type Snapshot = obs.Snapshot

// HistSummary is a Snapshot's digest of one latency histogram.
type HistSummary = obs.HistSummary

// TraceEvent is one entry of the optional event-trace ring buffer
// (enable with Metrics.EnableTrace, read with Metrics.TraceSnapshot).
type TraceEvent = obs.Event

// FlightSpan is one entry of the grace-period flight recorder: a causal
// span (retire, coalesce, wait, callback, migrate-drain or expedite)
// stamped with its grace period's GP ID. Enable the recorder with
// Options.FlightRecorder or Metrics.EnableFlightRecorder, read spans
// back with Metrics.FlightSnapshot, or serve them as Chrome trace JSON
// on /debug/prcu/tracez.
type FlightSpan = obs.FlightSpan

// SpanKind labels what phase of a grace period's life a FlightSpan
// covers.
type SpanKind = obs.SpanKind

// The FlightSpan kinds.
const (
	SpanRetire       = obs.SpanRetire
	SpanCoalesce     = obs.SpanCoalesce
	SpanWait         = obs.SpanWait
	SpanCallback     = obs.SpanCallback
	SpanMigrateDrain = obs.SpanMigrateDrain
	SpanExpedite     = obs.SpanExpedite
)

// BlameSample names one reader slot a blocked wait was delayed by and
// for how long; FlightSpan.Blame carries the samples of one wait.
type BlameSample = obs.BlameSample

// BlameEntry is one reader slot's aggregated blame: how many blocked
// waits charged it, the cumulative and worst-case delay, and the delay
// distribution. Read the top offenders with Metrics.TopBlame.
type BlameEntry = obs.BlameEntry

// StallReport is the stall watchdog's diagnostic snapshot of a wedged
// grace period, delivered to Options.OnStall: engine name, predicate
// description, how long the reporting wait had been blocked, and the
// offending open critical sections.
type StallReport = core.StallReport

// StalledReader describes one open critical section a stalled grace
// period is blocked on: its reader slot (counter-node index for D-PRCU
// and SRCU), the value it is reading when the engine tracks one, and how
// long it has been open when the engine timestamps sections.
type StalledReader = core.StalledReader

// StallCarrier is implemented by every engine: SetStallConfig arms,
// re-arms or (with a zero Timeout) disarms the grace-period stall
// watchdog at runtime. Options.StallTimeout is the usual way to arm it
// at construction.
type StallCarrier = core.StallCarrier

// StallConfig is the watchdog configuration for StallCarrier; see
// Options.StallTimeout/OnStall/StallRateLimit.
type StallConfig = core.StallConfig

// NewMetrics returns an enabled metrics collector to pass as
// Options.Metrics.
func NewMetrics() *Metrics { return obs.New() }

// PublishMetrics exports m's live Snapshot through expvar under the
// given name, visible on /debug/vars wherever the process serves it.
func PublishMetrics(name string, m *Metrics) { obs.Publish(name, m) }

// RegisterMetrics binds m to name in the export plane served by
// ObsHandler: name becomes the engine="name" label on /metrics and the
// key on the /debug/prcu endpoints. Engines constructed with
// Options.Metrics are registered automatically under their engine name;
// use RegisterMetrics for custom names (one per engine instance, say)
// or for Metrics driven outside an engine. Registering a bound name
// rebinds it — a benchmark sweep that rebuilds its engine per data
// point keeps one stable series — and registering a nil Metrics removes
// the binding.
func RegisterMetrics(name string, m *Metrics) { obs.Register(name, m) }

// ObsHandler returns the live export plane over every metrics collector
// bound by RegisterMetrics (or automatically by Options.Metrics):
//
//	GET /metrics            Prometheus text exposition (v0.0.4)
//	GET /debug/prcu/stats   full JSON Snapshot per engine
//	GET /debug/prcu/trace   event-ring dump for one engine (?engine=X)
//	GET /debug/prcu/tracez  flight-recorder spans as Chrome trace JSON (?engine=X)
//	GET /debug/prcu/health  stall/backlog-aware status (200 ok, 503 degraded)
//
// Mount it on any server: http.ListenAndServe(addr, prcu.ObsHandler()).
// Scrapes read the recording structures atomically; serving costs the
// engines nothing between scrapes.
func ObsHandler() http.Handler { return obshttp.Handler() }

// The typed API: package guard re-exported. See package guard for the
// full misuse model; the aliases below make `prcu` a one-import
// surface for new code, and cmd/prcuvet recognizes both spellings.

// Scope witnesses an open read-side critical section; every typed load
// demands one and it dies when the section exits. See guard.Scope.
type Scope = guard.Scope

// GuardedReader is the typed reader: a Reader plus reusable scope
// storage, minted by WrapReader. See guard.R.
type GuardedReader = guard.R

// WrapReader returns the typed reader over rd; see guard.Wrap.
func WrapReader(rd Reader) *GuardedReader { return guard.Wrap(rd) }

// Guarded is an atomic cell whose value is reachable only inside read
// scopes; see guard.Guarded.
type Guarded[T any] = guard.Guarded[T]

// NewGuarded returns a Guarded cell holding v; see guard.NewGuarded.
func NewGuarded[T any](v *T) *Guarded[T] { return guard.NewGuarded(v) }

// Cell is the intrusive atomic link of an RCU structure, loadable only
// through a Scope; see guard.Cell.
type Cell[T any] = guard.Cell[T]

// List is the canonical RCU linked list over Guarded/Cell; see
// guard.List.
type List[T any] = guard.List[T]

// NewList returns an empty typed RCU list; see guard.NewList.
func NewList[T any](next func(*T) *Cell[T]) *List[T] { return guard.NewList(next) }

// Retire schedules free(v) behind a grace period covering p, declaring
// unsafe.Sizeof(*v) retained bytes automatically; see guard.Retire.
func Retire[T any](rec *Reclaimer, p Predicate, v *T, free func(*T)) {
	guard.Retire(rec, p, v, free)
}

// RetireBytes is Retire with extra out-of-line bytes declared; see
// guard.RetireBytes.
func RetireBytes[T any](rec *Reclaimer, p Predicate, v *T, extra int, free func(*T)) {
	guard.RetireBytes(rec, p, v, extra, free)
}

// Retirer binds reclaimer, byte declaration and typed free once for an
// allocation-free retire path; see guard.Retirer.
type Retirer[T any] = guard.Retirer[T]

// NewRetirer constructs a Retirer; see guard.NewRetirer.
func NewRetirer[T any](rec *Reclaimer, extra int, free func(*T)) *Retirer[T] {
	return guard.NewRetirer(rec, extra, free)
}

// GuardEscape deliberately carries a guarded pointer out of its scope
// for validated-optimistic algorithms; see guard.Escape.
func GuardEscape[T any](s *Scope, p *T) *T { return guard.Escape(s, p) }

// Rates is the windowed view between two Snapshots of the same Metrics:
// waits and section entries per second, windowed selectivity and
// latency percentiles, and the reclamation backlog's growth slope. The
// /debug/prcu/health endpoint and `prcubench monitor` are built on it.
type Rates = obs.Rates

// DeltaStats computes the windowed rates between two snapshots taken dt
// apart (prev first). A zero prev yields since-start rates; counters
// that moved backwards (Metrics reset between samples) clamp to zero.
func DeltaStats(prev, cur Snapshot, dt time.Duration) Rates { return obs.Delta(prev, cur, dt) }

// WaitTuning is the spin→yield→park back-off discipline an engine's
// waiters follow while polling readers: how many spins before yielding
// the processor, how many yields per burst, and whether (and after how
// many yield steps) to park the goroutine in the scheduler between
// polls. The zero value is the built-in default (a short spin budget,
// burst-capped yields, no parking). Apply it at runtime through
// WaitTuner — every engine implements it.
type WaitTuning = core.WaitTuning

// The stock wait disciplines. WaitTuningSpin trades CPU for latency
// (long spin budget, rare yields) — right when waits are short and
// cores are idle. WaitTuningYield is the zero default spelled out.
// WaitTuningPark spins briefly then parks between polls — right on
// oversubscribed hosts where a spinning waiter steals cycles from the
// very readers it is waiting on. The Autotuner actuates these.
var (
	WaitTuningSpin  = core.WaitTuningSpin
	WaitTuningYield = core.WaitTuningYield
	WaitTuningPark  = core.WaitTuningPark
)

// WaitTuner is implemented by every engine: SetWaitTuning installs a
// wait discipline atomically (a zero WaitTuning restores the default);
// WaitTuning reads back the discipline in force. In-flight waits keep
// the discipline they started with.
type WaitTuner = core.WaitTuner

// AutotuneEnvelope is the operator's target envelope: the bounds the
// Autotuner must keep the runtime inside. Zero on any axis means
// unbounded there. Headroom (default 0.7) is the fraction of each
// bound at which the controller starts reacting — escalation begins
// before the envelope is crossed, not after.
type AutotuneEnvelope = adapt.Envelope

// AutotuneConfig parameterizes NewAutotuner: the envelope, the sensors
// and actuators (Metrics, Reclaimer, Engines — each optional), the
// sampling interval, and the hysteresis (BreachAfter ticks to escalate,
// EaseAfter calm ticks to ease; recovery is deliberately the slower of
// the two).
type AutotuneConfig = adapt.Config

// Autotuner is the self-tuning runtime controller: a sampling feedback
// loop from the observability plane to the runtime's own knobs. Each
// tick it reads the reclaimer's backlog and data-age gauges and the
// windowed wait-latency and stall rates, judges them against the
// operator's envelope, and walks a three-mode ladder:
//
//	normal    the configuration the operator chose
//	elevated  reclaim pacing drops to immediate, watermarks tighten to
//	          the envelope, waiters yield instead of spinning
//	degraded  additionally PolicyBlock degrades to PolicyInline (the
//	          backlog provably cannot grow past the watermark), waiters
//	          park between polls, and trace/attribution overhead is
//	          shed (unless KeepObservability), all restored on the way
//	          back down
//
// Drive it with Start/Stop (its own ticker) or Step (one synchronous
// tick). Every transition is counted in Metrics and traced as an
// "adapt" event; the controller's mode, counters and last measurements
// are visible on /metrics (prcu_autotune_*) and /debug/prcu/health
// under its Name. Close restores the baseline configuration.
type Autotuner = adapt.Controller

// AutotuneMode is the Autotuner's ladder rung (normal, elevated,
// degraded).
type AutotuneMode = adapt.Mode

// The Autotuner's ladder rungs.
const (
	AutotuneNormal   = adapt.ModeNormal
	AutotuneElevated = adapt.ModeElevated
	AutotuneDegraded = adapt.ModeDegraded
)

// NewAutotuner builds a self-tuning controller over the given sensors
// and actuators and registers its state under cfg.Name in the export
// plane. The controller does not tick until Start (or Step) is called.
func NewAutotuner(cfg AutotuneConfig) *Autotuner { return adapt.New(cfg) }
