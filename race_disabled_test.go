//go:build !race

package prcu_test

// raceEnabled reports whether the race detector is on; some assertions
// about sync.Pool reuse do not hold there (the runtime intentionally
// drops a fraction of pooled items under -race).
const raceEnabled = false
