package main

import "testing"

// TestMain smoke-tests the example end to end: it panics on any
// correctness violation, so completing is the assertion.
func TestMainRuns(t *testing.T) {
	main()
}
