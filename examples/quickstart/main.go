// Quickstart: the PRCU interface on a tiny RCU-protected linked list.
//
// The program maintains a lock-free-readable singly linked list of
// (key, value) pairs. Readers traverse inside read-side critical sections
// annotated with the key they are looking for. The single writer removes
// nodes and — before recycling a node's memory through a pool — calls
// WaitForReaders with a predicate covering only readers that could still
// hold a reference to it. That targeted wait is the paper's whole idea:
// with classic RCU the writer would stall behind *every* reader.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
)

// listNode is an RCU-protected list node. next is atomic because readers
// walk it without locks.
type listNode struct {
	key   uint64
	value uint64
	next  atomic.Pointer[listNode]
}

func main() {
	// D-PRCU: readers announce the key they read; waits drain only the
	// counters those keys hash to. The reader registry grows on demand, so
	// there is nothing to size here.
	rcu := prcu.NewD(prcu.Options{})

	var head atomic.Pointer[listNode]

	// A free pool stands in for C's free(): a node may be recycled only
	// after no reader can still be traversing it.
	pool := make(chan *listNode, 64)

	// Build a list with keys 0..31.
	for k := uint64(32); k > 0; k-- {
		n := &listNode{key: k - 1, value: (k - 1) * 100}
		n.next.Store(head.Load())
		head.Store(n)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var lookups atomic.Int64

	// Four readers search for random keys, entering a critical section on
	// the key they search for.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rd, err := rcu.Register()
			if err != nil {
				panic(err)
			}
			defer rd.Unregister()
			state := seed
			for !stop.Load() {
				state = state*6364136223846793005 + 1442695040888963407
				key := (state >> 33) % 32
				rd.Enter(key)
				for n := head.Load(); n != nil; n = n.next.Load() {
					if n.key == key {
						break
					}
				}
				rd.Exit(key)
				lookups.Add(1)
			}
		}(uint64(r + 1))
	}

	// Ephemeral readers: short-lived goroutines should not pay Register per
	// lookup — a ReaderPool lends out warm, already-registered readers, and
	// Critical wraps the whole borrow/Enter/Exit/return cycle.
	rpool := prcu.NewReaderPool(rcu)
	var oneShots atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			var inner sync.WaitGroup
			for g := 0; g < 4; g++ {
				inner.Add(1)
				go func(key uint64) {
					defer inner.Done()
					rpool.Critical(key, func() {
						for n := head.Load(); n != nil; n = n.next.Load() {
							if n.key == key {
								break
							}
						}
					})
					oneShots.Add(1)
				}(uint64(g) * 8)
			}
			inner.Wait()
		}
	}()

	// The writer repeatedly unlinks the node after head and recycles it
	// once no reader on its key remains.
	recycled := 0
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		h := head.Load()
		victim := h.next.Load()
		if victim == nil {
			break
		}
		h.next.Store(victim.next.Load()) // unlink (single writer)

		// Wait only for readers that could hold a reference: those whose
		// critical section is on the victim's key.
		rcu.WaitForReaders(prcu.Singleton(victim.key))

		// Now the node is unreachable by any present or future reader:
		// recycle it.
		victim.next.Store(nil)
		select {
		case pool <- victim:
		default:
		}
		recycled++

		// Put a fresh node (reusing pooled memory when available) at the
		// front so readers always have work.
		var n *listNode
		select {
		case n = <-pool:
		default:
			n = new(listNode)
		}
		n.key, n.value = victim.key, victim.value+1
		n.next.Store(head.Load())
		head.Store(n)
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("quickstart: %d pinned + %d pooled lookups raced %d recycle cycles with zero torn reads\n",
		lookups.Load(), oneShots.Load(), recycled)
	fmt.Println("every recycled node was quarantined by a predicate-scoped WaitForReaders")
}
