// Quickstart: the typed PRCU interface on a tiny RCU-protected linked list.
//
// The program maintains a lock-free-readable singly linked list of
// (key, value) pairs built from the typed guard layer: the links are
// prcu.Cell fields that can only be followed inside an open read scope, so
// "traversal outside a critical section" is a compile error rather than a
// latent race. Readers traverse inside scopes annotated with the key they
// are looking for. The single writer unlinks nodes and retires them through
// a typed Retirer — the node's memory is recycled only after a
// WaitForReaders covering just the readers that could still hold a
// reference. That targeted wait is the paper's whole idea: with classic RCU
// the writer would stall behind *every* reader.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
)

// listNode is an RCU-protected list node. next is a guarded cell: readers
// can only load it through an open *prcu.Scope.
type listNode struct {
	key   uint64
	value uint64
	next  prcu.Cell[listNode]
}

func main() {
	// D-PRCU: readers announce the key they read; waits drain only the
	// counters those keys hash to. The reader registry grows on demand, so
	// there is nothing to size here.
	rcu := prcu.NewD(prcu.Options{})

	// The typed list: one Guarded head plus per-node Cell links.
	list := prcu.NewList(func(n *listNode) *prcu.Cell[listNode] { return &n.next })

	// A free pool stands in for C's free(). The Retirer routes every
	// retired node through the reclaimer: the recycle callback runs only
	// after a grace period covering the retirement's predicate, so a node
	// in the pool is guaranteed unreachable by any reader.
	rec := prcu.NewReclaimer(rcu, prcu.ReclaimConfig{})
	var freed sync.Pool
	var recycledToPool atomic.Int64
	ret := prcu.NewRetirer(rec, 0, func(n *listNode) {
		n.next.Store(nil)
		freed.Put(n)
		recycledToPool.Add(1)
	})

	// Build a list with keys 0..31.
	for k := uint64(32); k > 0; k-- {
		list.PushHead(&listNode{key: k - 1, value: (k - 1) * 100})
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var lookups atomic.Int64

	// Four readers search for random keys, opening a read scope on the key
	// they search for. Read closes the scope even if the closure panics.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rd, err := rcu.Register()
			if err != nil {
				panic(err)
			}
			g := prcu.WrapReader(rd)
			defer g.Unregister()
			state := seed
			for !stop.Load() {
				state = state*6364136223846793005 + 1442695040888963407
				key := (state >> 33) % 32
				g.Read(key, func(s *prcu.Scope) {
					list.Find(s, func(n *listNode) bool { return n.key == key })
				})
				lookups.Add(1)
			}
		}(uint64(r + 1))
	}

	// Ephemeral readers: short-lived goroutines should not pay Register per
	// lookup — a ReaderPool lends out warm, already-registered readers, and
	// wrapping the borrowed reader gives it the same typed scope API.
	// Unregister on a pooled reader returns it to the pool.
	rpool := prcu.NewReaderPool(rcu)
	var oneShots atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			var inner sync.WaitGroup
			for gi := 0; gi < 4; gi++ {
				inner.Add(1)
				go func(key uint64) {
					defer inner.Done()
					g := prcu.WrapReader(rpool.Get())
					defer g.Unregister()
					g.Read(key, func(s *prcu.Scope) {
						list.Find(s, func(n *listNode) bool { return n.key == key })
					})
					oneShots.Add(1)
				}(uint64(gi) * 8)
			}
			inner.Wait()
		}
	}()

	// The writer repeatedly unlinks the node after head and retires it.
	// Retire quarantines the node behind a predicate covering only readers
	// on its key; the recycle callback above frees it into the pool once
	// the covering grace period completes.
	retired := 0
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		h := list.HeadLocked()
		victim := list.NextLocked(h)
		if victim == nil {
			break
		}
		// Capture the victim's payload before handing it to the reclaimer:
		// after Retire the writer must not touch it again.
		vkey, vval := victim.key, victim.value
		list.Unlink(h, victim) // unlink (single writer)
		ret.Retire(prcu.Singleton(vkey), victim)
		retired++

		// Put a fresh node (reusing quarantine-cleared memory when
		// available) at the front so readers always have work.
		var n *listNode
		if v := freed.Get(); v != nil {
			n = v.(*listNode)
		} else {
			n = new(listNode)
		}
		n.key, n.value = vkey, vval+1
		list.PushHead(n)
	}
	stop.Store(true)
	wg.Wait()
	rec.Barrier() // drain every outstanding retirement
	rec.Close()

	fmt.Printf("quickstart: %d pinned + %d pooled lookups raced %d retire cycles with zero torn reads\n",
		lookups.Load(), oneShots.Load(), retired)
	fmt.Printf("every one of the %d recycled nodes was quarantined by a predicate-scoped grace period\n",
		recycledToPool.Load())
}
