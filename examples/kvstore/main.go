// kvstore: a concurrent key-value store on the paper's resizable hash
// table (§5.1), growing itself under live read traffic.
//
// The store starts deliberately overloaded (load factor ~16) and expands
// whenever the load factor crosses 4 — each expansion unzips every bucket
// chain with a WaitForReaders before every pointer change, covering only
// the two buckets being split. Readers never block; the program verifies
// that no lookup of a stored key ever fails mid-expansion.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
	"prcu/hashtable"
)

func main() {
	const (
		readers  = 4
		keys     = 1 << 14
		initialB = 1 << 10 // start at load factor 16
	)
	rcu := prcu.NewD(prcu.Options{})
	// The generic table: uint64 keys placed by the seeded maphash (any
	// comparable key type works; NewModulo gives the paper's deterministic
	// uint64 layout instead).
	store := hashtable.New[uint64, uint64](rcu, initialB)

	for k := uint64(0); k < keys; k++ {
		store.Insert(k, k^0xabcdef)
	}
	fmt.Printf("kvstore: %d keys in %d buckets (load factor %.1f)\n",
		store.Size(), store.Buckets(), store.LoadFactor())

	var (
		stop    atomic.Bool
		misses  atomic.Int64
		lookups atomic.Int64
		wg      sync.WaitGroup
	)
	var ready sync.WaitGroup
	ready.Add(readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			// A pooled handle: infallible, returned to the pool on Close.
			h := store.Handle()
			defer h.Close()
			ready.Done()
			state := seed
			for !stop.Load() {
				state = state*6364136223846793005 + 1442695040888963407
				k := (state >> 30) % keys
				if v, ok := h.Get(k); !ok || v != k^0xabcdef {
					misses.Add(1)
				}
				lookups.Add(1)
			}
		}(uint64(r + 1))
	}
	// Let the readers get going so the expansions genuinely race them.
	ready.Wait()
	time.Sleep(20 * time.Millisecond)

	// Expand until the load factor is back under 4, timing each step.
	for store.LoadFactor() > 4 {
		t0 := time.Now()
		store.Expand()
		fmt.Printf("kvstore: expanded to %d buckets in %v (%d targeted waits so far)\n",
			store.Buckets(), time.Since(t0).Round(time.Microsecond), store.ExpansionWaits())
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("kvstore: %d concurrent lookups, %d misses (must be 0)\n",
		lookups.Load(), misses.Load())
	if misses.Load() != 0 {
		panic("kvstore: a reader missed a stored key during expansion")
	}
	if err := store.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("kvstore: final state valid, load factor %.1f\n", store.LoadFactor())
}
