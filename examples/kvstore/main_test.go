package main

import "testing"

// TestMainRuns smoke-tests the example end to end: it panics if any
// lookup misses a stored key during expansion, so completing is the
// assertion.
func TestMainRuns(t *testing.T) {
	main()
}
