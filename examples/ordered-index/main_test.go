package main

import "testing"

// TestMainRuns smoke-tests the example end to end: it validates the
// index after each engine's run and panics on violation, so completing
// is the assertion.
func TestMainRuns(t *testing.T) {
	main()
}
