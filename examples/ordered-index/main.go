// ordered-index: the CITRUS binary search tree (§5.2) as a concurrent
// ordered index, run back to back under three RCU engines to show what the
// predicate buys on an update-heavy workload.
//
// Each run drives the same mixed insert/delete/lookup traffic against a
// fresh tree using Time RCU (waits for everyone), EER-PRCU (waits for
// readers the predicate selects) and D-PRCU (waits on a counter table),
// and reports throughput plus how many operations completed.
//
// Run with:
//
//	go run ./examples/ordered-index
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
	"prcu/citrus"
)

const (
	workers  = 4
	keySpace = 1 << 14
	runFor   = 250 * time.Millisecond
)

func main() {
	configs := []struct {
		label  string
		rcu    prcu.RCU
		domain citrus.Domain
	}{
		{"Time RCU (waits for all readers)", prcu.NewTimeRCU(prcu.Options{}), citrus.WildcardDomain()},
		{"EER-PRCU (interval predicate)", prcu.NewEER(prcu.Options{}), citrus.FuncDomain()},
		{"D-PRCU (compressed domain)", prcu.NewD(prcu.Options{}), citrus.CompressedDomain(1024)},
	}
	for _, cfg := range configs {
		ops := runIndex(cfg.rcu, cfg.domain)
		fmt.Printf("%-36s %8.2f Mops/s\n", cfg.label, float64(ops)/runFor.Seconds()/1e6)
	}
}

func runIndex(r prcu.RCU, d citrus.Domain) int64 {
	idx := citrus.New(r, d)

	// Prefill to half occupancy, as in the paper's methodology. The pooled
	// Handle never fails: the reader registry grows on demand.
	{
		h := idx.Handle()
		state := uint64(42)
		for idx.Size() < keySpace/2 {
			state = state*6364136223846793005 + 1442695040888963407
			h.Insert((state>>30)%keySpace, state)
		}
		h.Close()
	}

	var (
		stop atomic.Bool
		ops  atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := idx.Handle()
			defer h.Close()
			state := seed
			n := int64(0)
			for !stop.Load() {
				state = state*6364136223846793005 + 1442695040888963407
				k := (state >> 30) % keySpace
				switch state % 10 {
				case 0, 1, 2: // 30% insert
					h.Insert(k, state)
				case 3, 4, 5: // 30% delete
					h.Delete(k)
				default: // 40% lookup
					h.Contains(k)
				}
				n++
			}
			ops.Add(n)
		}(uint64(w + 1))
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	if err := idx.Validate(); err != nil {
		panic(fmt.Sprintf("index invalid under %s: %v", r.Name(), err))
	}
	return ops.Load()
}
