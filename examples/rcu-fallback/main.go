// rcu-fallback: using PRCU as a drop-in classic RCU via the wildcard
// predicate (§3.1 "RCU fallback"), plus asynchronous grace periods in the
// style of call_rcu (§2.1).
//
// The program keeps a read-mostly configuration snapshot behind an atomic
// pointer. Readers dereference it inside read-side critical sections on a
// wildcard-compatible value; the writer swaps in new snapshots and retires
// old ones through prcu.Async, whose callbacks fire only after a covering
// grace period — without ever blocking the writer.
//
// Run with:
//
//	go run ./examples/rcu-fallback
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prcu"
)

// config is an immutable snapshot; readers must observe a consistent pair.
type config struct {
	version  uint64
	checksum uint64
	retired  *atomic.Bool // flips when the snapshot's memory is "reclaimed"
}

func main() {
	rcu := prcu.NewEER(prcu.Options{})
	async := prcu.NewAsync(rcu)
	defer async.Close()

	var current atomic.Pointer[config]
	mk := func(v uint64) *config {
		return &config{version: v, checksum: v * 7919, retired: new(atomic.Bool)}
	}
	current.Store(mk(0))

	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		reads     atomic.Int64
		anomalies atomic.Int64
	)
	// Readers use a single wildcard-ish value: there is no natural domain
	// for "the whole config", so value 0 + wildcard waits give exactly
	// classic RCU semantics.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd, err := rcu.Register()
			if err != nil {
				panic(err)
			}
			defer rd.Unregister()
			for !stop.Load() {
				rd.Enter(0)
				c := current.Load()
				// The snapshot must not have been reclaimed while we hold
				// it, and must be internally consistent.
				if c.retired.Load() || c.checksum != c.version*7919 {
					anomalies.Add(1)
				}
				rd.Exit(0)
				reads.Add(1)
			}
		}()
	}

	// The writer publishes new snapshots; each old snapshot is retired
	// asynchronously after a wildcard grace period.
	swaps := 0
	deadline := time.Now().Add(300 * time.Millisecond)
	for v := uint64(1); time.Now().Before(deadline); v++ {
		old := current.Load()
		current.Store(mk(v))
		async.Call(prcu.All(), func() { old.retired.Store(true) })
		swaps++
	}
	async.Barrier() // all retirements completed their grace periods
	stop.Store(true)
	wg.Wait()

	fmt.Printf("rcu-fallback: %d reads across %d snapshot swaps, %d anomalies (must be 0)\n",
		reads.Load(), swaps, anomalies.Load())
	if anomalies.Load() != 0 {
		panic("a reader observed a retired or torn snapshot")
	}
	fmt.Println("rcu-fallback: wildcard predicate gave classic RCU semantics; async retirement never blocked the writer")
}
