package main

import "testing"

// TestMainRuns smoke-tests the example end to end: it panics if a
// reader observes a retired or torn snapshot, so completing is the
// assertion.
func TestMainRuns(t *testing.T) {
	main()
}
