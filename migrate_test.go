package prcu_test

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prcu"
	"prcu/citrus"
	"prcu/hashtable"
	"prcu/internal/chaos"
	"prcu/internal/obs"
)

// campaignTarget picks a migration target different from the source
// flavor. Packed is the canonical escape target (cheapest clean
// engine); packed sources go to D.
func campaignTarget(src prcu.Flavor) prcu.Flavor {
	if src == prcu.FlavorPacked {
		return prcu.FlavorD
	}
	return prcu.FlavorPacked
}

// campaignNode is the guarded data: readers check the b == 2*a
// invariant that every published node satisfies, so a torn or
// prematurely freed node is visible as a read-side failure.
type campaignNode struct {
	a, b int64
}

// campaignToken tracks one retirement's callback count: exactly-once
// reclamation means every token ends the campaign at 1.
type campaignToken struct {
	freed atomic.Int32
}

// TestMigrationCampaign is the tentpole's chaos proof, per source
// flavor: a live workload (pooled reader churn validating guarded
// data, an update flood retiring tracked tokens) runs on a
// chaos-wrapped source engine with wait-hold faults injected.
//
// First a migration that CANNOT succeed (every source wait held longer
// than the phase deadline) is forced to roll back, and the test
// asserts the exact pre-migration wiring is restored: same source
// engine on the pool and the reclaimer, dual coverage dropped, the
// source's stall-watchdog configuration bit-identical. Then, with the
// storm eased, a real migration must complete: the workload lands on
// the target flavor, the source registry drains to zero, and after
// shutdown every retired token was reclaimed exactly once — no lost
// reads, no double or dropped reclamations, across both the rollback
// and the handover.
func TestMigrationCampaign(t *testing.T) {
	for _, f := range prcu.Flavors() {
		t.Run(string(f), func(t *testing.T) {
			t.Parallel()
			migrationCampaign(t, f)
		})
	}
}

func migrationCampaign(t *testing.T, src prcu.Flavor) {
	target := campaignTarget(src)
	inner := prcu.MustNew(src, prcu.Options{})
	eng := chaos.Wrap(inner, chaos.Config{
		Seed:        0xca0_0000 + uint64(len(src)),
		WaitHold:    0.4,
		WaitHoldDur: 2 * time.Millisecond,
	})
	pool := prcu.NewReaderPool(eng)
	rec := prcu.NewReclaimer(eng, prcu.ReclaimConfig{Shards: 2, FlushDelay: -1})

	// The workload. Readers validate the guarded invariant under
	// pool.Critical; updaters publish fresh nodes and retire the old via
	// tracked tokens.
	var cur atomic.Pointer[campaignNode]
	cur.Store(&campaignNode{a: 1, b: 2})
	var (
		tokMu     sync.Mutex
		tokens    []*campaignToken
		badReads  atomic.Int64
		overFrees atomic.Int64
	)
	free := func(v any) {
		if v.(*campaignToken).freed.Add(1) != 1 {
			overFrees.Add(1)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pool.Critical(prcu.Value(g*64+i%64), func() {
					n := cur.Load()
					if n.b != 2*n.a {
						badReads.Add(1)
					}
				})
				if i%128 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	for u := 0; u < 2; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cur.Store(&campaignNode{a: i, b: 2 * i})
				tok := &campaignToken{}
				tokMu.Lock()
				tokens = append(tokens, tok)
				tokMu.Unlock()
				rec.Retire(tok, prcu.All(), 16, free)
				time.Sleep(200 * time.Microsecond)
			}
		}(u)
	}

	// Let the storm and workload establish themselves.
	time.Sleep(20 * time.Millisecond)

	t.Run("forced-rollback", func(t *testing.T) {
		// Every source wait held far past the phase deadline: phase 1 can
		// never finish, so the protocol MUST roll back — and restore the
		// exact pre-migration configuration.
		prior := prcu.StallConfig{Timeout: 123 * time.Millisecond, RateLimit: 456 * time.Millisecond}
		eng.SetStallConfig(prior)
		eng.SetConfig(chaos.Config{WaitHold: 1.0, WaitHoldDur: 500 * time.Millisecond})

		mig := prcu.NewMigrator(prcu.MigratorConfig{
			Name:         "campaign-rollback-" + string(src),
			Engine:       eng,
			Flavor:       src,
			Fronts:       []prcu.EngineFront{pool},
			Reclaimer:    rec,
			PhaseTimeout: 25 * time.Millisecond,
			StallTimeout: 50 * time.Millisecond,
		})
		defer mig.Close()

		err := mig.To(context.Background(), target)
		if err == nil {
			t.Fatalf("migration succeeded with every source wait held 500ms against a 25ms phase deadline")
		}
		if !strings.Contains(err.Error(), "rolled back") {
			t.Fatalf("error does not report rollback: %v", err)
		}

		// Exact restoration: the fronts and reclaimer are back on the
		// same source engine pointer, dual coverage is dropped, and the
		// watchdog config matches the pre-migration one field for field.
		if pool.Engine() != prcu.RCU(eng) {
			t.Fatalf("pool not restored to source after rollback")
		}
		if rec.Engine() != prcu.RCU(eng) {
			t.Fatalf("reclaimer not restored to source after rollback")
		}
		if rec.HandoverTarget() != nil {
			t.Fatalf("dual coverage still in force after rollback")
		}
		if mig.Flavor() != src || mig.Engine() != prcu.RCU(eng) {
			t.Fatalf("migrator tracking %q after rollback, want source %q", mig.Flavor(), src)
		}
		got, armed := eng.StallConfigInForce()
		if !armed {
			t.Fatalf("source watchdog disarmed by rollback")
		}
		if got.Timeout != prior.Timeout || got.RateLimit != prior.RateLimit {
			t.Fatalf("watchdog config not restored: got %+v want %+v", got, prior)
		}
		if st := mig.State(); st.RolledBack != 1 || st.Completed != 0 || st.Active {
			t.Fatalf("bad migrator state after rollback: %+v", st)
		}
	})

	t.Run("live", func(t *testing.T) {
		// Ease the storm back to survivable and migrate for real.
		eng.SetConfig(chaos.Config{WaitHold: 0.3, WaitHoldDur: time.Millisecond})

		mig := prcu.NewMigrator(prcu.MigratorConfig{
			Name:         "campaign-live-" + string(src),
			Engine:       eng,
			Flavor:       src,
			Fronts:       []prcu.EngineFront{pool},
			Reclaimer:    rec,
			PhaseTimeout: 30 * time.Second,
		})
		defer mig.Close()

		if err := mig.To(context.Background(), target); err != nil {
			t.Fatalf("live migration failed: %v", err)
		}
		if mig.Flavor() != target {
			t.Fatalf("migrator on %q, want %q", mig.Flavor(), target)
		}
		if pool.Engine() != mig.Engine() {
			t.Fatalf("pool and migrator disagree on the engine after handover")
		}
		if rec.Engine() != mig.Engine() {
			t.Fatalf("reclaimer and migrator disagree on the engine after handover")
		}
		if rec.HandoverTarget() != nil {
			t.Fatalf("dual coverage still in force after handover")
		}
		// Phase 1 drained the source registry to zero before handover.
		if n := eng.LiveReaders(); n != 0 {
			t.Fatalf("source still has %d live readers after handover", n)
		}
		// The constructed target carries its flavor token, so a stall on
		// it mid-window is attributed to the right engine instance.
		if fc, ok := mig.Engine().(interface{ FlavorToken() string }); !ok || fc.FlavorToken() != string(target) {
			t.Fatalf("target engine does not carry flavor token %q", target)
		}
	})

	// Let the workload run on the target briefly, then shut down and
	// audit: zero bad reads, and every token reclaimed exactly once.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rec.CloseCtx(ctx); err != nil {
		t.Fatalf("reclaimer close: %v", err)
	}
	pool.Close()

	if n := badReads.Load(); n != 0 {
		t.Fatalf("%d guarded reads saw a violated invariant", n)
	}
	if n := overFrees.Load(); n != 0 {
		t.Fatalf("%d tokens freed more than once", n)
	}
	tokMu.Lock()
	defer tokMu.Unlock()
	lost := 0
	for _, tok := range tokens {
		if tok.freed.Load() != 1 {
			lost++
		}
	}
	if lost != 0 {
		t.Fatalf("%d of %d tokens never reclaimed", lost, len(tokens))
	}
	if len(tokens) == 0 {
		t.Fatalf("update flood retired nothing; campaign proved nothing")
	}
}

// TestReaderPoolCloseDuringChurn races Close against concurrent
// Critical borrowers: the only defined panic is Get-after-Close, a
// late Put is a no-op that releases its slot, and every registered
// reader is eventually released.
func TestReaderPoolCloseDuringChurn(t *testing.T) {
	r := prcu.NewD(prcu.Options{})
	pool := prcu.NewReaderPool(r)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							s, ok := p.(string)
							if !ok || !strings.Contains(s, "Get after Close") {
								panic(p)
							}
						}
					}()
					pool.Critical(prcu.Value(g*64+i%64), func() {})
				}()
			}
		}(g)
	}

	time.Sleep(10 * time.Millisecond)
	pool.Close()
	close(stop)
	wg.Wait()

	// Every slot drains: cached handles by Close's drain (or a borrower's
	// post-Close Put), anything sync.Pool hid from both by the finalizer.
	deadline := time.Now().Add(20 * time.Second)
	for liveReaders(t, r) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("LiveReaders still %d after Close during churn", liveReaders(t, r))
		}
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReaderPoolSwapEngineDrains checks the migration front contract
// directly: SwapEngine redirects new borrows onto the target, cached
// source handles are retired, a checked-out source handle releases its
// slot on Put, and the source registry drains to zero.
func TestReaderPoolSwapEngineDrains(t *testing.T) {
	src := prcu.NewD(prcu.Options{})
	dst := prcu.NewEER(prcu.Options{})
	pool := prcu.NewReaderPool(src)

	out := pool.Get() // checked out across the swap
	cached := pool.Get()
	pool.Put(cached) // parked in the cache at swap time

	if prev := pool.SwapEngine(dst); prev != prcu.RCU(src) {
		t.Fatalf("SwapEngine returned %v, want the source engine", prev)
	}
	if pool.Engine() != prcu.RCU(dst) {
		t.Fatalf("pool still on source after SwapEngine")
	}

	// New borrows land on the target.
	rd := pool.Get()
	rd.Enter(1)
	rd.Exit(1)
	pool.Put(rd)
	if n := liveReaders(t, dst); n < 1 {
		t.Fatalf("no readers registered on the target after swap, LiveReaders = %d", n)
	}

	// The stale checked-out handle is retired on Put, not re-cached; the
	// cached one was retired by the swap (or falls to the finalizer when
	// sync.Pool hid it). The source drains to zero.
	pool.Put(out)
	deadline := time.Now().Add(20 * time.Second)
	for liveReaders(t, src) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("source LiveReaders still %d after swap drain", liveReaders(t, src))
		}
		pool.DrainStale()
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
	pool.Close()
}

// gatedEngine wraps an engine so a test can park exactly one Register
// call in the window between a front's engine load and the registration
// itself — the TOCTOU the post-Register re-check closes.
type gatedEngine struct {
	prcu.RCU
	entered chan struct{}
	release chan struct{}
	armed   atomic.Bool
}

func (g *gatedEngine) Register() (prcu.Reader, error) {
	if g.armed.CompareAndSwap(true, false) {
		g.entered <- struct{}{}
		<-g.release
	}
	return g.RCU.Register()
}

// TestRegisterSwapRace pins the TOCTOU between a front's engine load
// and its Register call: a borrower parked in that window while the
// front flips engines — and the source's registry drain consequently
// reads empty — must not come back holding a source reader. The
// post-Register re-check in ReaderPool.Get and the structures'
// NewHandle detects the flip and retries on the live engine; without
// it the reader would sit on an engine no grace period covers.
func TestRegisterSwapRace(t *testing.T) {
	newGated := func() (src, dst prcu.RCU, g *gatedEngine) {
		src = prcu.NewD(prcu.Options{})
		dst = prcu.NewEER(prcu.Options{})
		g = &gatedEngine{RCU: src, entered: make(chan struct{}), release: make(chan struct{})}
		return src, dst, g
	}

	t.Run("pool-get", func(t *testing.T) {
		src, dst, g := newGated()
		pool := prcu.NewReaderPool(g)
		probeRegisterSwapRace(t, src, dst, g,
			func() { pool.SwapEngine(dst) },
			func() func() {
				rd := pool.Get()
				rd.Enter(1)
				rd.Exit(1)
				return func() { pool.Put(rd); pool.Close() }
			})
	})

	t.Run("hashtable-handle", func(t *testing.T) {
		src, dst, g := newGated()
		m := hashtable.NewModulo(g, 16)
		probeRegisterSwapRace(t, src, dst, g,
			func() { m.SwapEngine(dst) },
			func() func() {
				h, err := m.NewHandle()
				if err != nil {
					panic(err)
				}
				h.Get(1)
				return func() { h.Close() }
			})
	})

	t.Run("citrus-handle", func(t *testing.T) {
		src, dst, g := newGated()
		tr := citrus.New(g, citrus.WildcardDomain())
		probeRegisterSwapRace(t, src, dst, g,
			func() { tr.SwapEngine(dst) },
			func() func() {
				h, err := tr.NewHandle()
				if err != nil {
					panic(err)
				}
				h.Contains(1)
				return func() { h.Close() }
			})
	})
}

// probeRegisterSwapRace drives the race deterministically: arm the
// gate, let the borrower park between its engine load and Register,
// flip the front, verify the source looks fully drained — exactly what
// a migrator's registry poll would conclude — then release the parked
// registration and require the borrower's reader to surface on the
// target, leaving the drained source empty.
func probeRegisterSwapRace(t *testing.T, src, dst prcu.RCU, g *gatedEngine, swap func(), acquire func() func()) {
	t.Helper()
	g.armed.Store(true)
	done := make(chan func(), 1)
	go func() { done <- acquire() }()
	<-g.entered

	swap()
	src.WaitForReaders(prcu.All())
	if n := liveReaders(t, src); n != 0 {
		t.Fatalf("source LiveReaders = %d before the parked Register, want 0", n)
	}

	close(g.release)
	release := <-done
	if n := liveReaders(t, src); n != 0 {
		t.Fatalf("parked Register landed a reader on the drained source: LiveReaders = %d", n)
	}
	if n := liveReaders(t, dst); n != 1 {
		t.Fatalf("target LiveReaders = %d after the re-checked registration, want 1", n)
	}
	release()
}

// TestMigratorDropsStaleObsBindings checks Migrator.To's export-plane
// hygiene: a rolled-back migration unbinds the abandoned target's
// metrics registration, a successful one unbinds the decommissioned
// source's, and the live engine stays bound throughout.
func TestMigratorDropsStaleObsBindings(t *testing.T) {
	met := prcu.NewMetrics()
	src := prcu.MustNew(prcu.FlavorEER, prcu.Options{Metrics: met})
	pool := prcu.NewReaderPool(src)
	defer pool.Close()

	mig := prcu.NewMigrator(prcu.MigratorConfig{
		Engine:       src,
		Flavor:       prcu.FlavorEER,
		Fronts:       []prcu.EngineFront{pool},
		Options:      prcu.Options{Metrics: met},
		PhaseTimeout: 50 * time.Millisecond,
	})
	defer mig.Close()

	// A reader registered outside every front pins phase 1 past its
	// deadline: the migration to D must roll back, and the abandoned
	// D target's binding must go with it.
	rd, err := src.Register()
	if err != nil {
		t.Fatal(err)
	}
	abandonedName := prcu.MustNew(prcu.FlavorD, prcu.Options{}).Name()
	if err := mig.To(context.Background(), prcu.FlavorD); err == nil {
		t.Fatalf("To succeeded with a parked source reader")
	}
	if obs.Registered(abandonedName) != nil {
		t.Fatalf("abandoned target %q still bound in the export registry", abandonedName)
	}
	if obs.Registered(src.Name()) == nil {
		t.Fatalf("source %q unbound by a rolled-back migration", src.Name())
	}
	rd.Unregister()

	if err := mig.To(context.Background(), prcu.FlavorPacked); err != nil {
		t.Fatalf("To: %v", err)
	}
	if obs.Registered(src.Name()) != nil {
		t.Fatalf("decommissioned source %q still bound in the export registry", src.Name())
	}
	if obs.Registered(mig.Engine().Name()) == nil {
		t.Fatalf("live engine %q not bound in the export registry", mig.Engine().Name())
	}
}
