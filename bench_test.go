// Benchmarks mirroring the paper's evaluation, one family per figure.
// These are the testing.B counterparts of cmd/prcubench, sized so that
// `go test -bench=. -benchmem` finishes quickly; the CLI harness is the
// tool for full sweeps and the normalized/percentage views.
package prcu_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"prcu"
	"prcu/citrus"
	"prcu/hashtable"
	"prcu/internal/workload"
)

const (
	benchReaders  = 16
	benchKeySpace = 1 << 14
)

// benchEngine is one row of the benchmark lineup. The lineup is derived
// from prcu.Flavors() so every engine appears in every figure bench; a
// flavor missing from the spec table below is a hard failure, not a
// silently thinner comparison.
type benchEngine struct {
	name   string
	mk     func() prcu.RCU
	domain citrus.Domain
}

func benchEngines() []benchEngine {
	specs := map[prcu.Flavor]struct {
		name   string
		domain func() citrus.Domain
	}{
		prcu.FlavorEER:    {"EER-PRCU", citrus.FuncDomain},
		prcu.FlavorD:      {"D-PRCU", func() citrus.Domain { return citrus.CompressedDomain(1024) }},
		prcu.FlavorDEER:   {"DEER-PRCU", func() citrus.Domain { return citrus.CompressedDomain(1024) }},
		prcu.FlavorTime:   {"TimeRCU", citrus.WildcardDomain},
		prcu.FlavorTree:   {"TreeRCU", citrus.WildcardDomain},
		prcu.FlavorURCU:   {"URCU", citrus.WildcardDomain},
		prcu.FlavorDist:   {"DistRCU", citrus.WildcardDomain},
		prcu.FlavorSRCU:   {"SRCU", citrus.WildcardDomain},
		prcu.FlavorPacked: {"Packed", citrus.WildcardDomain},
	}
	flavors := prcu.Flavors()
	out := make([]benchEngine, 0, len(flavors))
	for _, f := range flavors {
		spec, ok := specs[f]
		if !ok {
			panic(fmt.Sprintf("bench_test: flavor %q has no benchmark spec; add it to benchEngines", f))
		}
		f := f
		out = append(out, benchEngine{
			name:   spec.name,
			mk:     func() prcu.RCU { return prcu.MustNew(f, prcu.Options{MaxReaders: benchReaders}) },
			domain: spec.domain(),
		})
	}
	return out
}

// BenchmarkReadSideEnterExit measures each engine's raw rcu_enter/rcu_exit
// cost — the per-read overhead Figure 7 exposes at the data structure
// level.
func BenchmarkReadSideEnterExit(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.name, func(b *testing.B) {
			r := e.mk()
			rd, err := r.Register()
			if err != nil {
				b.Fatal(err)
			}
			defer rd.Unregister()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := prcu.Value(i & 1023)
				rd.Enter(v)
				rd.Exit(v)
			}
		})
	}
}

// BenchmarkEnterExit is the packed-vs-URCU read-side head-to-head: both
// engines do one reader-private store on Enter and one on Exit, but URCU's
// Enter also derives its word from the global phase under a seq-cst RMW
// discipline, while the packed engine is a plain load + or + store. This
// is the regression guard for the packed engine's reason to exist — its
// per-op time must stay at or below URCU's (EXPERIMENTS.md records the
// numbers). Run with -cpu 1,4 to see both the uncontended and the
// cacheline-sharing-free parallel picture.
func BenchmarkEnterExit(b *testing.B) {
	for _, f := range []prcu.Flavor{prcu.FlavorURCU, prcu.FlavorPacked} {
		b.Run(string(f), func(b *testing.B) {
			r := prcu.MustNew(f, prcu.Options{})
			b.RunParallel(func(pb *testing.PB) {
				rd, err := r.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer rd.Unregister()
				for i := 0; pb.Next(); i++ {
					v := prcu.Value(i & 1023)
					rd.Enter(v)
					rd.Exit(v)
				}
			})
		})
	}
}

// BenchmarkFig1WaitVsOp is Figure 1's comparison as two benches: the cost
// of an uncontended wait-for-readers next to a hash lookup.
func BenchmarkFig1WaitVsOp(b *testing.B) {
	b.Run("HashLookup", func(b *testing.B) {
		r := prcu.NewTimeRCU(prcu.Options{MaxReaders: 2})
		m := hashtable.NewModulo(r, 1<<12)
		rng := workload.NewRNG(1)
		for n := 0; n < 2<<12; {
			if m.Insert(rng.Intn(4<<12), 0) {
				n++
			}
		}
		h, err := m.NewHandle()
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Contains(rng.Intn(4 << 12))
		}
	})
	b.Run("WaitForReaders", func(b *testing.B) {
		r := prcu.NewTimeRCU(prcu.Options{MaxReaders: 2})
		rd, err := r.Register()
		if err != nil {
			b.Fatal(err)
		}
		defer rd.Unregister()
		rd.Enter(0)
		rd.Exit(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.WaitForReaders(prcu.All())
		}
	})
}

// benchTree builds a half-full CITRUS tree.
func benchTree(b *testing.B, r prcu.RCU, d citrus.Domain) *citrus.Tree {
	b.Helper()
	t := citrus.New(r, d)
	h, err := t.NewHandle()
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	rng := workload.NewRNG(0xfeedface)
	for t.Size() < benchKeySpace/2 {
		h.Insert(rng.Intn(benchKeySpace), 0)
	}
	return t
}

// benchTreeMix drives one operation mix over a fresh tree per engine,
// with RunParallel supplying the concurrency.
func benchTreeMix(b *testing.B, mix workload.Mix) {
	for _, e := range benchEngines() {
		b.Run(e.name, func(b *testing.B) {
			t := benchTree(b, e.mk(), e.domain)
			var seed atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h, err := t.NewHandle()
				if err != nil {
					b.Error(err)
					return
				}
				defer h.Close()
				rng := workload.NewRNG(seed.Add(1))
				for pb.Next() {
					k := rng.Intn(benchKeySpace)
					switch mix.Pick(rng) {
					case workload.OpContains:
						h.Contains(k)
					case workload.OpInsert:
						h.Insert(k, k)
					default:
						h.Delete(k)
					}
				}
			})
		})
	}
}

// BenchmarkFig5ReadDominated..WriteDominated are Figure 5's workloads.
func BenchmarkFig5ReadDominated(b *testing.B) { benchTreeMix(b, workload.ReadDominated) }

// BenchmarkFig5Mixed is the 70/15/15 panel.
func BenchmarkFig5Mixed(b *testing.B) { benchTreeMix(b, workload.Mixed) }

// BenchmarkFig5WriteDominated is the 0/50/50 panel.
func BenchmarkFig5WriteDominated(b *testing.B) { benchTreeMix(b, workload.WriteDominated) }

// BenchmarkFig7ReadOnly is Figure 7's pure read-overhead probe.
func BenchmarkFig7ReadOnly(b *testing.B) { benchTreeMix(b, workload.ReadOnly) }

// BenchmarkFig6WaitLatency measures a single wait-for-readers issued
// against each engine while reader churn runs — Figure 6(b)/(d)'s
// per-wait latency.
func BenchmarkFig6WaitLatency(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.name, func(b *testing.B) {
			r := e.mk()
			var stop atomic.Bool
			done := make(chan struct{})
			go func() {
				defer close(done)
				rd, err := r.Register()
				if err != nil {
					b.Error(err)
					return
				}
				defer rd.Unregister()
				for i := 0; !stop.Load(); i++ {
					v := prcu.Value(i & 63)
					rd.Enter(v)
					rd.Exit(v)
				}
			}()
			pred := prcu.Interval(10, 12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.WaitForReaders(pred)
			}
			b.StopTimer()
			stop.Store(true)
			<-done
		})
	}
}

// BenchmarkFig9Expand times a full table expansion (the unzip with its
// per-pointer-change waits) under each engine — Figure 9(b)'s latency.
func BenchmarkFig9Expand(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r := e.mk()
				m := hashtable.NewModulo(r, 1<<10)
				rng := workload.NewRNG(9)
				for n := 0; n < 4<<10; {
					if m.Insert(rng.Intn(8<<10), 0) {
						n++
					}
				}
				b.StartTimer()
				m.Expand()
			}
		})
	}
}

// BenchmarkPredicate measures predicate construction + evaluation, the
// only new cost PRCU puts on the wait path itself.
func BenchmarkPredicate(b *testing.B) {
	cases := []struct {
		name string
		p    prcu.Predicate
	}{
		{"All", prcu.All()},
		{"Singleton", prcu.Singleton(7)},
		{"Interval", prcu.Interval(100, 110)},
		{"Func", prcu.Func(func(v prcu.Value) bool { return v > 100 && v <= 110 })},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sink := false
			for i := 0; i < b.N; i++ {
				sink = c.p.Holds(prcu.Value(i & 255))
			}
			_ = sink
		})
	}
}

// BenchmarkWaitNoReaders measures the floor cost of wait-for-readers with
// nothing to wait for — the case PRCU optimizes toward, since most
// targeted waits find no conflicting readers.
func BenchmarkWaitNoReaders(b *testing.B) {
	for _, e := range benchEngines() {
		b.Run(e.name, func(b *testing.B) {
			r := e.mk()
			pred := prcu.Singleton(5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.WaitForReaders(pred)
			}
		})
	}
}

func ExampleNew() {
	r := prcu.MustNew(prcu.FlavorD, prcu.Options{MaxReaders: 4})
	rd, _ := r.Register()
	rd.Enter(42)
	// ... read the structure region identified by 42 ...
	rd.Exit(42)
	r.WaitForReaders(prcu.Singleton(42))
	rd.Unregister()
	fmt.Println(r.Name())
	// Output: D-PRCU
}
