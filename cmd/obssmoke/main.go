// Command obssmoke is the CI gate for the live export plane: it builds
// every engine flavor with metrics attached, drives a little traffic,
// serves prcu.ObsHandler on a loopback listener, scrapes /metrics,
// /debug/prcu/health and /debug/prcu/tracez over real HTTP, and exits
// non-zero if any scrape fails, comes back empty, /metrics is missing a
// flavor's series, tracez is missing the grace-period span chain, or
// the health report is missing the flight recorder's blame section.
// ci.sh runs it after the unit suites; it needs no curl.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"prcu"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: OK")
}

func run() error {
	// One engine per flavor, auto-registered under its engine name, with
	// enough traffic that waits and sections carry data.
	names := make([]string, 0, len(prcu.Flavors()))
	for _, f := range prcu.Flavors() {
		m := prcu.NewMetrics()
		m.SetSectionSampleShift(0)
		r := prcu.MustNew(f, prcu.Options{Metrics: m})
		names = append(names, r.Name())
		rd, err := r.Register()
		if err != nil {
			return fmt.Errorf("%s: Register: %w", r.Name(), err)
		}
		for i := 0; i < 8; i++ {
			rd.Enter(prcu.Value(i))
			rd.Exit(prcu.Value(i))
		}
		for i := 0; i < 3; i++ {
			r.WaitForReaders(prcu.All())
		}
		rd.Unregister()
	}

	// Flight-recorder traffic: rebind the EER name to an engine with the
	// recorder armed, retire through a reclaimer so tracez carries a full
	// retire → coalesce → wait → callback chain, and hold one section
	// open across a wait so the blame aggregation has a sample.
	fm := prcu.NewMetrics()
	fr := prcu.MustNew(prcu.FlavorEER, prcu.Options{Metrics: fm, FlightRecorder: true})
	flightEngine := fr.Name()
	rec := prcu.NewReclaimer(fr, prcu.ReclaimConfig{Shards: 1, Metrics: fm})
	rec.Retire(struct{}{}, prcu.All(), 64, nil)
	rec.Flush()
	entered := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		rd, err := fr.Register()
		if err != nil {
			return
		}
		rd.Enter(prcu.Value(1))
		close(entered)
		time.Sleep(20 * time.Millisecond)
		rd.Exit(prcu.Value(1))
		rd.Unregister()
	}()
	<-entered
	fr.WaitForReaders(prcu.All()) // blocks on the held section: blame lands
	<-exited
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rec.CloseCtx(cctx); err != nil {
		return fmt.Errorf("reclaimer close: %w", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: prcu.ObsHandler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	metrics, err := scrape(base + "/metrics")
	if err != nil {
		return err
	}
	for _, n := range names {
		series := fmt.Sprintf("prcu_waits_total{engine=%q}", n)
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("/metrics missing %s", series)
		}
	}
	for _, fam := range []string{"prcu_wait_duration_seconds_bucket", "prcu_reclaim_pending", "le=\"+Inf\""} {
		if !strings.Contains(metrics, fam) {
			return fmt.Errorf("/metrics missing %s", fam)
		}
	}

	health, err := scrape(base + "/debug/prcu/health")
	if err != nil {
		return err
	}
	if !strings.Contains(health, `"status": "ok"`) {
		return fmt.Errorf("/debug/prcu/health not ok: %s", health)
	}
	if !strings.Contains(health, `"blame"`) {
		return fmt.Errorf("/debug/prcu/health missing the blame section: %s", health)
	}

	if err := checkTracez(base, flightEngine); err != nil {
		return err
	}

	// Unknown-engine probes must 404 and name what *is* registered.
	for _, path := range []string{"/debug/prcu/trace", "/debug/prcu/tracez"} {
		if err := checkUnknownEngine(base, path, flightEngine); err != nil {
			return err
		}
	}
	return nil
}

// checkTracez scrapes the flight recorder's Chrome-trace endpoint and
// verifies it parses, every event carries the required fields, and the
// full grace-period span chain the reclaimer drove is present.
func checkTracez(base, engine string) error {
	body, err := scrape(base + "/debug/prcu/tracez?engine=" + engine)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return fmt.Errorf("/debug/prcu/tracez is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("/debug/prcu/tracez has no traceEvents")
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return fmt.Errorf("/debug/prcu/tracez event missing %q: %v", field, ev)
			}
		}
		if name, _ := ev["name"].(string); ev["ph"] == "X" {
			seen[name] = true
		}
	}
	for _, kind := range []string{"retire", "coalesce", "wait", "callback"} {
		if !seen[kind] {
			return fmt.Errorf("/debug/prcu/tracez missing a %q span (saw %v)", kind, seen)
		}
	}
	return nil
}

// checkUnknownEngine verifies the per-engine endpoints reject an
// unregistered name with 404 and list the names that would work.
func checkUnknownEngine(base, path, knownEngine string) error {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(base + path + "?engine=no-such-engine")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("GET %s?engine=no-such-engine = %d, want 404", path, resp.StatusCode)
	}
	if !strings.Contains(string(body), "registered:") || !strings.Contains(string(body), knownEngine) {
		return fmt.Errorf("%s 404 body does not list registered engines: %s", path, body)
	}
	return nil
}

// scrape GETs url and fails on non-200 or an empty body.
func scrape(url string) (string, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if len(body) == 0 {
		return "", fmt.Errorf("GET %s returned an empty body", url)
	}
	return string(body), nil
}
