// Command obssmoke is the CI gate for the live export plane: it builds
// every engine flavor with metrics attached, drives a little traffic,
// serves prcu.ObsHandler on a loopback listener, scrapes /metrics and
// /debug/prcu/health over real HTTP, and exits non-zero if either
// scrape fails, comes back empty, or /metrics is missing a flavor's
// series. ci.sh runs it after the unit suites; it needs no curl.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"prcu"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: OK")
}

func run() error {
	// One engine per flavor, auto-registered under its engine name, with
	// enough traffic that waits and sections carry data.
	names := make([]string, 0, len(prcu.Flavors()))
	for _, f := range prcu.Flavors() {
		m := prcu.NewMetrics()
		m.SetSectionSampleShift(0)
		r := prcu.MustNew(f, prcu.Options{Metrics: m})
		names = append(names, r.Name())
		rd, err := r.Register()
		if err != nil {
			return fmt.Errorf("%s: Register: %w", r.Name(), err)
		}
		for i := 0; i < 8; i++ {
			rd.Enter(prcu.Value(i))
			rd.Exit(prcu.Value(i))
		}
		for i := 0; i < 3; i++ {
			r.WaitForReaders(prcu.All())
		}
		rd.Unregister()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: prcu.ObsHandler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	metrics, err := scrape(base + "/metrics")
	if err != nil {
		return err
	}
	for _, n := range names {
		series := fmt.Sprintf("prcu_waits_total{engine=%q}", n)
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("/metrics missing %s", series)
		}
	}
	for _, fam := range []string{"prcu_wait_duration_seconds_bucket", "prcu_reclaim_pending", "le=\"+Inf\""} {
		if !strings.Contains(metrics, fam) {
			return fmt.Errorf("/metrics missing %s", fam)
		}
	}

	health, err := scrape(base + "/debug/prcu/health")
	if err != nil {
		return err
	}
	if !strings.Contains(health, `"status": "ok"`) {
		return fmt.Errorf("/debug/prcu/health not ok: %s", health)
	}
	return nil
}

// scrape GETs url and fails on non-200 or an empty body.
func scrape(url string) (string, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if len(body) == 0 {
		return "", fmt.Errorf("GET %s returned an empty body", url)
	}
	return string(body), nil
}
