// Command prcuvet statically checks PRCU guard-API usage. It reports three
// misuse classes the type system cannot rule out: read sections opened and
// never closed (enterexit), guarded pointers that outlive their scope
// (guardescape), and retirements of still-reachable nodes (retireunlink).
// See the internal/vet package documentation for the precise rules.
//
// Two modes:
//
// Standalone, over package patterns (non-test sources):
//
//	prcuvet ./...
//
// As a go vet tool, which also covers test files:
//
//	go vet -vettool=$(which prcuvet) ./...
//
// Exit status is 0 when clean, 2 when findings were reported, 1 on
// operational errors.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"

	"prcu/internal/vet"
)

// printVersion emits the `-V=full` line the go command uses as this
// tool's build-cache key: "name version devel buildID=<content hash>",
// the convention vet tools follow so rebuilt binaries invalidate cached
// vet results.
func printVersion() {
	fmt.Printf("prcuvet version devel")
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				fmt.Printf(" buildID=%02x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Println()
}

func main() {
	args := os.Args[1:]

	// go vet protocol: version for the build cache key, flags, then one
	// invocation per package unit with a .cfg file.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg":
			n, err := vet.RunUnit(args[0], os.Stderr)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if n > 0 {
				os.Exit(2)
			}
			return
		}
	}

	// Standalone mode over package patterns.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pkgs, err := vet.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags := vet.Analyze(pkgs)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
