// Command prcubench regenerates the evaluation of "Predicate RCU: An RCU
// for Scalable Concurrent Updates" (Arbel & Morrison, PPoPP 2015): one
// subcommand per figure, plus parameter ablations and an everything run.
//
// Usage:
//
//	prcubench [flags] fig1|fig5|fig6|fig7|fig8|fig9|ablation|stats|reclaim|monitor|adapt|migrate|blame|all
//
// The stats subcommand runs the mixed workload with the observability
// layer attached and dumps each engine's internal metrics: grace-period
// latency histograms, predicate selectivity, wait resolution and sampled
// reader-section durations. The monitor subcommand runs the same
// workload on every engine concurrently and renders a live table of
// windowed rates (waits/s, enters/s, selectivity, latency percentiles)
// refreshed every -refresh for -monitor-for. The adapt subcommand runs
// the chaos storm campaign against a deliberately misconfigured
// reclaimer twice — with and without the self-tuning controller — and
// reports whether each run held the operator's age/backlog envelope
// (-monitor-for sizes one run, -refresh the live display). The migrate
// subcommand holds most grace periods on the source engine — a failure
// no reclaimer re-tuning can fix — and runs the same storm with and
// without the autotuner's live-migration escape hatch armed, reporting
// whether the workload was handed over to a clean engine mid-storm. The
// blame subcommand arms the flight recorder, plants one
// deterministically slow reader via chaos fault injection, and reports
// whether the recorder's per-slot blame convicts exactly that reader
// (-monitor-for sizes the run).
//
// With -serve ADDR any subcommand also serves the live export plane
// while it runs — Prometheus /metrics, /debug/prcu/stats,
// /debug/prcu/trace and /debug/prcu/health — over the engines the
// experiment constructs:
//
//	prcubench -serve 127.0.0.1:9090 stats      # scrape /metrics mid-run
//	prcubench -serve 127.0.0.1:9090 reclaim    # watch backlog gauges live
//
// The defaults are scaled for a laptop-class host; use the flags to dial
// the experiment back up to the paper's methodology (3-second windows,
// 5 runs, 1..64 threads, a 2e6 key space, a 1e6-element hash table):
//
//	prcubench -duration 3s -runs 5 -threads 1,2,4,8,16,24,32,40,48,56,64 \
//	          -large-keys 2000000 -hash-elements 1048576 all
//
// For CI smoke runs, -quick shrinks every parameter to seconds-scale and
// -json emits each table as one JSON object per line on stdout:
//
//	prcubench -quick -json fig1
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"prcu"
	"prcu/internal/bench"
)

func main() {
	var (
		threadsFlag  = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts to sweep")
		duration     = flag.Duration("duration", 150*time.Millisecond, "measurement window per data point")
		runs         = flag.Int("runs", 3, "repetitions per point (median reported)")
		smallKeys    = flag.Uint64("small-keys", 20000, "small key space (paper: 20000)")
		largeKeys    = flag.Uint64("large-keys", 200000, "large key space (paper: 2000000)")
		hashElements = flag.Uint64("hash-elements", 1<<14, "figure 9 table population, power of two x4 (paper: ~1e6)")
		includeLF    = flag.Bool("lftree", false, "include the LF-Tree baseline in figure 5/7 tables")
		csvPath      = flag.String("csv", "", "also write every table as CSV to this file")
		jsonOut      = flag.Bool("json", false, "write tables as JSON Lines on stdout instead of text (progress goes to stderr)")
		quick        = flag.Bool("quick", false, "smoke-test preset: tiny windows, 1 run, small key spaces (explicit flags still override)")
		serve        = flag.String("serve", "", "serve the live export plane (/metrics, /debug/prcu/*) on this address for the duration of the run")
		refresh      = flag.Duration("refresh", time.Second, "monitor subcommand: table refresh interval")
		monitorFor   = flag.Duration("monitor-for", 10*time.Second, "monitor subcommand: total time to run the monitored workload")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prcubench [flags] %s\n\n", subcommands)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if *quick {
		// A preset for CI smoke runs: every figure exercises its full code
		// path, but each data point is tiny. Flags the user passed
		// explicitly win over the preset.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["threads"] {
			*threadsFlag = "1,2"
		}
		if !set["duration"] {
			*duration = 20 * time.Millisecond
		}
		if !set["runs"] {
			*runs = 1
		}
		if !set["small-keys"] {
			*smallKeys = 2000
		}
		if !set["large-keys"] {
			*largeKeys = 8000
		}
		if !set["hash-elements"] {
			*hashElements = 1 << 10
		}
		if !set["monitor-for"] {
			*monitorFor = 2 * time.Second
		}
		if !set["refresh"] {
			*refresh = 500 * time.Millisecond
		}
	}

	cfg := bench.DefaultConfig(os.Stdout)
	cfg.Duration = *duration
	cfg.Runs = *runs
	cfg.SmallKeys = *smallKeys
	cfg.LargeKeys = *largeKeys
	cfg.HashElements = *hashElements
	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prcubench:", err)
		os.Exit(2)
	}
	cfg.Threads = threads
	if *jsonOut {
		// Machine-readable mode: tables go to stdout as JSON Lines; the
		// human-readable text (and any stats dumps) moves to stderr.
		cfg.JSON = os.Stdout
		cfg.Out = os.Stderr
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prcubench:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.CSV = f
	}

	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prcubench:", err)
			os.Exit(1)
		}
		defer ln.Close()
		// Engines constructed from here on carry registered metrics the
		// handler can see; the listener dies with the process.
		cfg.Observe = true
		fmt.Fprintf(os.Stderr, "serving /metrics and /debug/prcu/* on http://%s\n", ln.Addr())
		go http.Serve(ln, prcu.ObsHandler())
	}

	start := time.Now()
	if err := dispatch(flag.Arg(0), cfg, *includeLF, *monitorFor, *refresh); err != nil {
		fmt.Fprintln(os.Stderr, "prcubench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(cfg.Out, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// subcommands is the canonical experiment list, shared by the usage
// text and the unknown-subcommand error.
const subcommands = "fig1|fig5|fig6|fig7|fig8|fig9|ablation|stats|reclaim|monitor|adapt|migrate|blame|all"

func dispatch(cmd string, cfg bench.Config, includeLF bool, monitorFor, refresh time.Duration) error {
	switch cmd {
	case "fig1":
		return bench.Fig1(cfg)
	case "fig5":
		return bench.Fig5(cfg, includeLF)
	case "fig6":
		return bench.Fig6(cfg)
	case "fig7":
		return bench.Fig7(cfg, includeLF)
	case "fig8":
		return bench.Fig8(cfg)
	case "fig9":
		return bench.Fig9(cfg)
	case "ablation":
		return bench.Ablation(cfg)
	case "stats":
		return bench.Stats(cfg)
	case "reclaim":
		return bench.Reclaim(cfg)
	case "monitor":
		return bench.Monitor(cfg, monitorFor, refresh)
	case "adapt":
		return bench.Adapt(cfg, monitorFor, refresh)
	case "migrate":
		return bench.Migrate(cfg, monitorFor, refresh)
	case "blame":
		return bench.Blame(cfg, monitorFor)
	case "all":
		for _, f := range []func() error{
			func() error { return bench.Fig1(cfg) },
			func() error { return bench.Fig5(cfg, includeLF) },
			func() error { return bench.Fig6(cfg) },
			func() error { return bench.Fig7(cfg, includeLF) },
			func() error { return bench.Fig8(cfg) },
			func() error { return bench.Fig9(cfg) },
			func() error { return bench.Ablation(cfg) },
			func() error { return bench.Stats(cfg) },
			func() error { return bench.Reclaim(cfg) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want %s)", cmd, subcommands)
	}
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty thread list")
	}
	return out, nil
}
