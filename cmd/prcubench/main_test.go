package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"prcu/internal/bench"
)

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"1,2,4", []int{1, 2, 4}, true},
		{" 8 , 16 ", []int{8, 16}, true},
		{"1", []int{1}, true},
		{"", nil, false},
		{"0", nil, false},
		{"-3", nil, false},
		{"two", nil, false},
	}
	for _, c := range cases {
		got, err := parseThreads(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseThreads(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestDispatchUnknown(t *testing.T) {
	var buf bytes.Buffer
	cfg := bench.DefaultConfig(&buf)
	if err := dispatch("nope", cfg, false); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestDispatchRunsExperiment(t *testing.T) {
	var buf bytes.Buffer
	cfg := bench.DefaultConfig(&buf)
	cfg.Threads = []int{1}
	cfg.Duration = 5 * time.Millisecond
	cfg.Runs = 1
	cfg.SmallKeys = 256
	cfg.LargeKeys = 512
	cfg.HashElements = 512
	if err := dispatch("fig1", cfg, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatalf("dispatch produced unexpected output:\n%s", buf.String())
	}
}
