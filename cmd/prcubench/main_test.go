package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"prcu/internal/bench"
)

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"1,2,4", []int{1, 2, 4}, true},
		{" 8 , 16 ", []int{8, 16}, true},
		{"1", []int{1}, true},
		{"", nil, false},
		{"0", nil, false},
		{"-3", nil, false},
		{"two", nil, false},
	}
	for _, c := range cases {
		got, err := parseThreads(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseThreads(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestDispatchUnknown(t *testing.T) {
	var buf bytes.Buffer
	cfg := bench.DefaultConfig(&buf)
	err := dispatch("nope", cfg, false, time.Second, time.Second)
	if err == nil {
		t.Fatal("unknown subcommand must error")
	}
	// The error must teach the full subcommand list, including monitor.
	for _, want := range []string{"monitor", "stats", "reclaim", "fig9", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-subcommand error %q does not list %s", err, want)
		}
	}
}

func TestDispatchMonitor(t *testing.T) {
	var buf bytes.Buffer
	cfg := bench.DefaultConfig(&buf)
	cfg.Threads = []int{1}
	cfg.SmallKeys = 256
	if err := dispatch("monitor", cfg, false, 150*time.Millisecond, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "live monitor") || !strings.Contains(out, "waits/s") {
		t.Fatalf("monitor output missing table:\n%s", out)
	}
}

func TestDispatchRunsExperiment(t *testing.T) {
	var buf bytes.Buffer
	cfg := bench.DefaultConfig(&buf)
	cfg.Threads = []int{1}
	cfg.Duration = 5 * time.Millisecond
	cfg.Runs = 1
	cfg.SmallKeys = 256
	cfg.LargeKeys = 512
	cfg.HashElements = 512
	if err := dispatch("fig1", cfg, false, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatalf("dispatch produced unexpected output:\n%s", buf.String())
	}
}
